package zdb

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/ladder"
	"retrograde/internal/ra"
)

// pack builds a v1 table from values at the given width.
func pack(t *testing.T, name string, bits int, vals []game.Value) *db.Table {
	t.Helper()
	tab, err := db.Pack(name, bits, vals)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// roundtrip compresses, serialises, and re-reads a table.
func roundtrip(t *testing.T, tab *db.Table, blockLen int) *Table {
	t.Helper()
	z, err := Compress(tab, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundtripMixedValues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]game.Value, 10000)
	for i := range vals {
		switch {
		case i < 4000: // long constant run
			vals[i] = 3
		case i < 7000: // narrow range
			vals[i] = game.Value(5 + rng.Intn(4))
		default: // full width
			vals[i] = game.Value(rng.Intn(1 << 9))
		}
	}
	tab := pack(t, "mixed", 9, vals)
	for _, blockLen := range []int{1, 7, 512, 4096, 100000} {
		z := roundtrip(t, tab, blockLen)
		if z.Name() != "mixed" || z.Size() != tab.Size() || z.Bits() != 9 {
			t.Fatalf("blockLen %d: header mismatch: %q %d %d", blockLen, z.Name(), z.Size(), z.Bits())
		}
		got, err := z.Unpack()
		if err != nil {
			t.Fatalf("blockLen %d: %v", blockLen, err)
		}
		for i, v := range vals {
			if got[i] != v {
				t.Fatalf("blockLen %d: streaming entry %d = %d, want %d", blockLen, i, got[i], v)
			}
		}
		for i := 0; i < len(vals); i += 37 {
			if g := z.Get(uint64(i)); g != vals[i] {
				t.Fatalf("blockLen %d: Get(%d) = %d, want %d", blockLen, i, g, vals[i])
			}
		}
		if err := z.Verify(); err != nil {
			t.Fatalf("blockLen %d: verify: %v", blockLen, err)
		}
	}
}

func TestCodecSelection(t *testing.T) {
	constant := make([]game.Value, 4096)
	z, err := Compress(pack(t, "c", 8, constant), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if raw, narrow, rle, huff := z.CodecCounts(); raw+huff != 0 || narrow+rle != 1 {
		t.Errorf("constant block picked %d raw, %d narrow, %d rle, %d huff", raw, narrow, rle, huff)
	}
	if z.Bytes() > 64 {
		t.Errorf("constant 4096-entry block compressed to %d bytes", z.Bytes())
	}

	rng := rand.New(rand.NewSource(1))
	noisy := make([]game.Value, 4096)
	for i := range noisy {
		noisy[i] = game.Value(rng.Intn(256))
	}
	z, err = Compress(pack(t, "n", 8, noisy), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if raw, narrow, rle, huff := z.CodecCounts(); raw+huff != 1 || narrow+rle != 0 {
		t.Errorf("uniform-random block picked %d raw, %d narrow, %d rle, %d huff", raw, narrow, rle, huff)
	}

	// Values in [100, 103] need 2 bits against an 8-bit entry width.
	shifted := make([]game.Value, 4096)
	for i := range shifted {
		shifted[i] = game.Value(100 + rng.Intn(4))
	}
	z, err = Compress(pack(t, "s", 8, shifted), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if raw, narrow, rle, huff := z.CodecCounts(); narrow+huff != 1 || raw+rle != 0 {
		t.Errorf("narrow-range block picked %d raw, %d narrow, %d rle, %d huff", raw, narrow, rle, huff)
	}
	if z.Bytes() >= z.RawBytes() {
		t.Errorf("narrow block did not shrink: %d >= %d", z.Bytes(), z.RawBytes())
	}
}

// TestAwariParity is the bit-exact acceptance check: for every rung of
// the awari ladder, the v2 table equals the v1 table entry for entry,
// via both streaming decode and random access.
func TestAwariParity(t *testing.T) {
	maxStones := 8
	if testing.Short() {
		maxStones = 6
	}
	cfg := ladder.Config{Rules: awari.Standard, Loop: awari.LoopOwnSide}
	l, err := ladder.Build(cfg, maxStones, ra.Concurrent{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= maxStones; n++ {
		vals := l.Result(n).Values
		bits := l.Slice(n).ValueBits()
		v1 := pack(t, l.Slice(n).Name(), bits, vals)
		v2 := roundtrip(t, v1, 1024)
		if v2.Size() != v1.Size() {
			t.Fatalf("rung %d: %d entries, want %d", n, v2.Size(), v1.Size())
		}
		stream, err := v2.Unpack()
		if err != nil {
			t.Fatalf("rung %d: %v", n, err)
		}
		for i := uint64(0); i < v1.Size(); i++ {
			want := v1.Get(i)
			if stream[i] != want {
				t.Fatalf("rung %d: streaming entry %d = %d, want %d", n, i, stream[i], want)
			}
			if got := v2.Get(i); got != want {
				t.Fatalf("rung %d: random-access entry %d = %d, want %d", n, i, got, want)
			}
		}
		if v2.Bytes() >= v1.Bytes() && n >= 4 {
			t.Errorf("rung %d: compressed %d bytes >= packed %d", n, v2.Bytes(), v1.Bytes())
		}
	}
}

func TestRandomAccessStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]game.Value, 64*1024)
	for i := range vals {
		vals[i] = game.Value(rng.Intn(200))
	}
	z := roundtrip(t, pack(t, "storm", 8, vals), 512)
	z.SetHotBlocks(4) // 128 blocks through a 4-block cache
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ok := true
			for i := 0; i < 20000; i++ {
				idx := uint64(rng.Intn(len(vals)))
				if z.Get(idx) != vals[idx] {
					ok = false
					break
				}
			}
			done <- ok
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent Get returned a wrong value")
		}
	}
}

func TestCorruptBlockNamed(t *testing.T) {
	vals := make([]game.Value, 16*1024)
	for i := range vals {
		vals[i] = game.Value(i % 11)
	}
	z, err := Compress(pack(t, "corrupt", 4, vals), 1024)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.radb")
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(path); err != nil {
		t.Fatalf("clean file failed verification: %v", err)
	}

	// Flip a byte inside block 5's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dataStart := len(raw) - 8 - len(z.data)
	off := dataStart + int(z.dir[5].off) + int(z.dir[5].encLen)/2
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyFile(path)
	if err == nil {
		t.Fatal("corrupt file passed verification")
	}
	if !strings.Contains(err.Error(), "block 5") {
		t.Errorf("error %q does not name block 5", err)
	}
	// The strict reader must reject it too (whole-file checksum).
	if _, err := Load(path); err == nil {
		t.Error("strict Load accepted a corrupt file")
	}
}

func TestStatSeesV2(t *testing.T) {
	vals := make([]game.Value, 8192)
	for i := range vals {
		vals[i] = 2
	}
	tab := pack(t, "statv2", 6, vals)
	z, err := Compress(tab, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pv1 := filepath.Join(dir, "v1.radb")
	pv2 := filepath.Join(dir, "v2.radb")
	if err := tab.Save(pv1); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(pv2); err != nil {
		t.Fatal(err)
	}
	i1, err := db.Stat(pv1)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := db.Stat(pv2)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Version != db.Version1 || i1.Compressed != 0 || i1.ServingBytes() != i1.Bytes {
		t.Errorf("v1 stat: %+v", i1)
	}
	if i2.Version != db.Version2 || i2.Name != "statv2" || i2.Entries != 8192 || i2.Bits != 6 {
		t.Errorf("v2 stat: %+v", i2)
	}
	if i2.Bytes != tab.Bytes() {
		t.Errorf("v2 raw bytes %d, want packed %d", i2.Bytes, tab.Bytes())
	}
	if i2.Compressed != z.Bytes() || i2.ServingBytes() != z.Bytes() {
		t.Errorf("v2 compressed %d (serving %d), want %d", i2.Compressed, i2.ServingBytes(), z.Bytes())
	}
	if i2.Compressed >= i2.Bytes {
		t.Errorf("constant table did not compress: %d >= %d", i2.Compressed, i2.Bytes)
	}
	// db.Load must point at zdb rather than failing opaquely.
	if _, err := db.Load(pv2); err == nil || !strings.Contains(err.Error(), "zdb") {
		t.Errorf("db.Load of a v2 file: %v", err)
	}
	// And zdb.Load must point back for v1 files.
	if _, err := Load(pv1); err == nil || !strings.Contains(err.Error(), "package db") {
		t.Errorf("zdb.Load of a v1 file: %v", err)
	}
}

func TestInflateMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]game.Value, 5000)
	for i := range vals {
		vals[i] = game.Value(rng.Intn(16))
	}
	tab := pack(t, "inflate", 4, vals)
	z := roundtrip(t, tab, 256)
	flat, err := z.Inflate()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Size() != tab.Size() || flat.Bits() != tab.Bits() || flat.Name() != tab.Name() {
		t.Fatalf("inflate header mismatch")
	}
	for i := uint64(0); i < tab.Size(); i++ {
		if flat.Get(i) != tab.Get(i) {
			t.Fatalf("entry %d: %d != %d", i, flat.Get(i), tab.Get(i))
		}
	}
}

func TestEmptyAndTinyTables(t *testing.T) {
	z := roundtrip(t, pack(t, "one", 4, []game.Value{9}), 0)
	if z.BlockLen() != DefaultBlockLen || z.Blocks() != 1 {
		t.Errorf("single entry: blockLen %d, blocks %d", z.BlockLen(), z.Blocks())
	}
	if z.Get(0) != 9 {
		t.Errorf("Get(0) = %d, want 9", z.Get(0))
	}
	empty, err := db.NewTable("empty", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	ze := roundtrip(t, empty, 16)
	if ze.Size() != 0 || ze.Blocks() != 0 {
		t.Errorf("empty: size %d, blocks %d", ze.Size(), ze.Blocks())
	}
	if err := ze.Verify(); err != nil {
		t.Errorf("empty verify: %v", err)
	}
}

// BenchmarkZdbRandomGet is the acceptance benchmark: random access with
// a warm block cache must be allocation-free in steady state.
func BenchmarkZdbRandomGet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]game.Value, 256*1024)
	for i := range vals {
		vals[i] = game.Value(rng.Intn(40))
	}
	tab, err := db.Pack("bench", 6, vals)
	if err != nil {
		b.Fatal(err)
	}
	z, err := Compress(tab, DefaultBlockLen)
	if err != nil {
		b.Fatal(err)
	}
	nBlocks := z.Blocks()
	z.SetHotBlocks(nBlocks) // warm cache covers the working set
	for i := uint64(0); i < z.Size(); i += DefaultBlockLen {
		z.Get(i) // pre-decode every block
	}
	idx := make([]uint64, 8192)
	for i := range idx {
		idx[i] = uint64(rng.Intn(len(vals)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if z.Get(idx[i%len(idx)]) != vals[idx[i%len(idx)]] {
			b.Fatal("wrong value")
		}
	}
}

// BenchmarkZdbColdGet measures the miss path: every Get decodes through
// a single-block cache, exercising the pooled backing arrays.
func BenchmarkZdbColdGet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]game.Value, 256*1024)
	for i := range vals {
		vals[i] = game.Value(rng.Intn(40))
	}
	tab, err := db.Pack("bench", 6, vals)
	if err != nil {
		b.Fatal(err)
	}
	z, err := Compress(tab, DefaultBlockLen)
	if err != nil {
		b.Fatal(err)
	}
	z.SetHotBlocks(1)
	stride := uint64(DefaultBlockLen + 1) // new block almost every probe
	b.ReportAllocs()
	b.ResetTimer()
	var i uint64
	for n := 0; n < b.N; n++ {
		z.Get(i % z.Size())
		i += stride
	}
}
