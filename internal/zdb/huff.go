package zdb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"retrograde/internal/game"
)

// Canonical Huffman codec (codecHuff). Awari tables concentrate their
// values — order-0 entropy sits a full bit or more below the packed
// width on every measured rung — but their runs are short (average ~2.5
// entries), so run-length coding loses where entropy coding wins. The
// payload is:
//
//	maxSym u16                      largest symbol present
//	lens   ceil((maxSym+1)/2) bytes 4-bit code lengths, low nibble first
//	bits   MSB-first bitstream of canonical codes
//
// Code lengths are capped at huffMaxLen so a length always fits a
// nibble; canonical assignment (sorted by length, then symbol) makes
// the lengths alone sufficient to rebuild the code.
const huffMaxLen = 15

// huffLengths returns capped canonical code lengths for freqs (0 for
// absent symbols). At least two symbols must be present.
func huffLengths(freqs []uint32) []uint8 {
	f := make([]uint64, len(freqs))
	for i, c := range freqs {
		f[i] = uint64(c)
	}
	for {
		lens := huffBuild(f)
		maxLen := uint8(0)
		for _, l := range lens {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= huffMaxLen {
			return lens
		}
		// Flatten the distribution and retry; converges quickly and only
		// triggers on pathological skew.
		for i := range f {
			if f[i] > 1 {
				f[i] = (f[i] + 1) / 2
			}
		}
	}
}

// huffBuild computes optimal code lengths by the sorted two-queue
// method.
func huffBuild(freqs []uint64) []uint8 {
	type node struct {
		weight      uint64
		left, right int // -1 for leaves
		sym         int
	}
	var nodes []node
	for s, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{weight: f, left: -1, right: -1, sym: s})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].weight < nodes[j].weight })
	leaves := len(nodes)
	// Two queues: leaves (sorted) and internal nodes (built in
	// nondecreasing weight order); the two lightest roots are always at
	// one of the two queue fronts.
	li, ii := 0, leaves
	pop := func() int {
		if li < leaves && (ii >= len(nodes) || nodes[li].weight <= nodes[ii].weight) {
			li++
			return li - 1
		}
		ii++
		return ii - 1
	}
	for remaining := leaves; remaining > 1; remaining-- {
		a := pop()
		b := pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, left: a, right: b})
	}
	lens := make([]uint8, len(freqs))
	if leaves == 1 {
		lens[nodes[0].sym] = 1
		return lens
	}
	// Depth-first from the root (the last internal node).
	type frame struct {
		n     int
		depth uint8
	}
	stack := []frame{{len(nodes) - 1, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[fr.n]
		if nd.left < 0 {
			lens[nd.sym] = fr.depth
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lens
}

// huffCanonical assigns canonical codes from lengths: symbols sorted by
// (length, symbol) get consecutive codes. Returns per-symbol codes.
func huffCanonical(lens []uint8) []uint16 {
	var count [huffMaxLen + 1]uint16
	for _, l := range lens {
		count[l]++
	}
	count[0] = 0 // absent symbols get no code
	var next [huffMaxLen + 1]uint16
	code := uint16(0)
	for l := 1; l <= huffMaxLen; l++ {
		code = (code + count[l-1]) << 1
		next[l] = code
	}
	codes := make([]uint16, len(lens))
	for s, l := range lens {
		if l > 0 {
			codes[s] = next[l]
			next[l]++
		}
	}
	return codes
}

// huffSize returns the encoded byte size for vals under lens.
func huffSize(lens []uint8, freqs []uint32) int {
	bits := 0
	for s, l := range lens {
		bits += int(l) * int(freqs[s])
	}
	return 2 + (len(lens)+1)/2 + (bits+7)/8
}

// encodeHuff appends the canonical-Huffman encoding of vals to dst.
func encodeHuff(dst []byte, vals []game.Value, lens []uint8) []byte {
	codes := huffCanonical(lens)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(lens)-1))
	for i := 0; i < len(lens); i += 2 {
		b := lens[i]
		if i+1 < len(lens) {
			b |= lens[i+1] << 4
		}
		dst = append(dst, b)
	}
	var acc uint32
	nbits := 0
	for _, v := range vals {
		l := int(lens[v])
		acc = acc<<l | uint32(codes[v])
		nbits += l
		for nbits >= 8 {
			dst = append(dst, byte(acc>>(nbits-8)))
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	return dst
}

// decodeHuff decodes n values from src into out[:n].
func decodeHuff(src []byte, n int, bits int, out []game.Value) error {
	if len(src) < 2 {
		return fmt.Errorf("zdb: huffman block shorter than its header")
	}
	maxSym := int(binary.LittleEndian.Uint16(src))
	if maxSym >= 1<<bits {
		return fmt.Errorf("zdb: huffman symbol %d does not fit in %d bits", maxSym, bits)
	}
	alpha := maxSym + 1
	lensBytes := (alpha + 1) / 2
	if len(src) < 2+lensBytes {
		return fmt.Errorf("zdb: huffman block truncated in its length table")
	}
	lens := make([]uint8, alpha)
	for i := range lens {
		b := src[2+i/2]
		if i%2 == 1 {
			b >>= 4
		}
		lens[i] = b & 0xF
	}
	// Canonical decode tables: first code and first rank per length, and
	// symbols sorted by (length, symbol).
	var count [huffMaxLen + 1]uint16
	for _, l := range lens {
		count[l]++
	}
	count[0] = 0 // absent symbols get no code
	var firstCode, firstRank [huffMaxLen + 2]uint16
	code, rank := uint16(0), uint16(0)
	for l := 1; l <= huffMaxLen; l++ {
		code = (code + count[l-1]) << 1
		firstCode[l] = code
		firstRank[l] = rank
		rank += count[l]
	}
	syms := make([]uint16, 0, alpha)
	for l := uint8(1); l <= huffMaxLen; l++ {
		for s, sl := range lens {
			if sl == l {
				syms = append(syms, uint16(s))
			}
		}
	}
	body := src[2+lensBytes:]
	bitPos := 0
	totalBits := len(body) * 8
	for i := 0; i < n; i++ {
		c := uint16(0)
		matched := false
		for l := 1; l <= huffMaxLen; l++ {
			if bitPos >= totalBits {
				return fmt.Errorf("zdb: huffman bitstream exhausted at value %d", i)
			}
			c = c<<1 | uint16(body[bitPos/8]>>(7-bitPos%8)&1)
			bitPos++
			if count[l] > 0 && c >= firstCode[l] && c-firstCode[l] < count[l] {
				out[i] = game.Value(syms[firstRank[l]+c-firstCode[l]])
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("zdb: huffman code at value %d matches no symbol", i)
		}
	}
	return nil
}
