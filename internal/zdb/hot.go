package zdb

import (
	"fmt"

	"retrograde/internal/game"
)

// hotBlock is one decoded block resident in the table's LRU.
type hotBlock struct {
	idx   int    // block index, -1 when the slot is empty
	stamp uint64 // last-use clock tick
	vals  []game.Value
}

// SetHotBlocks sets the decoded-block LRU capacity (default 8 blocks)
// and drops anything currently decoded. A server tuning for a scan-heavy
// workload can raise it; the compressed payload itself never grows.
func (t *Table) SetHotBlocks(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.hot = nil
	t.free = nil
	t.hotCap = n
	t.mu.Unlock()
}

// Get returns entry idx, decoding at most one block. Hits on a decoded
// block allocate nothing; a miss decodes into a pooled backing array
// recycled from the evicted block, so the steady state is allocation-free
// (see BenchmarkZdbRandomGet). Safe for concurrent callers.
func (t *Table) Get(idx uint64) game.Value {
	if idx >= t.size {
		panic(fmt.Sprintf("zdb: index %d out of range [0, %d)", idx, t.size))
	}
	b := int(idx / uint64(t.blockLen))
	within := idx % uint64(t.blockLen)
	t.mu.Lock()
	t.clock++
	for i := range t.hot {
		if t.hot[i].idx == b {
			t.hot[i].stamp = t.clock
			v := t.hot[i].vals[within]
			t.mu.Unlock()
			return v
		}
	}
	vals, err := t.decodeLocked(b)
	if err != nil {
		t.mu.Unlock()
		// Load verified the file checksum, so a decode failure here is
		// corruption of the in-core payload or a format bug.
		panic(err)
	}
	v := vals[within]
	t.mu.Unlock()
	return v
}

// decodeLocked decodes block b into a pooled array and installs it in
// the LRU, evicting the least recently used block when full. Called with
// t.mu held.
func (t *Table) decodeLocked(b int) ([]game.Value, error) {
	limit := t.hotCap
	if limit == 0 {
		limit = defaultHotBlocks
	}
	var vals []game.Value
	if n := len(t.free); n > 0 {
		vals = t.free[n-1]
		t.free = t.free[:n-1]
	} else if len(t.hot) >= limit {
		lru := 0
		for i := range t.hot {
			if t.hot[i].stamp < t.hot[lru].stamp {
				lru = i
			}
		}
		vals = t.hot[lru].vals
		t.hot[lru] = t.hot[len(t.hot)-1]
		t.hot = t.hot[:len(t.hot)-1]
	} else {
		vals = make([]game.Value, t.blockLen)
	}
	n := t.blockEntries(b)
	if err := decodeBlock(t.encoded(b), n, t.bits, t.dir[b].codec, t.dir[b].param, vals); err != nil {
		t.free = append(t.free, vals)
		return nil, fmt.Errorf("zdb: block %d: %w", b, err)
	}
	t.hot = append(t.hot, hotBlock{idx: b, stamp: t.clock, vals: vals})
	return vals, nil
}
