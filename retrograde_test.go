package retrograde_test

import (
	"path/filepath"
	"testing"

	"retrograde"
)

// TestPublicAPIQuickstart exercises the documented quickstart end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide}
	l, err := retrograde.BuildLadder(cfg, 6, retrograde.Sequential{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	board := retrograde.Board{0, 0, 0, 0, 2, 1, 1, 0, 0, 0, 0, 2}
	pit, value, ok := l.BestMove(board)
	if !ok {
		t.Fatal("BestMove reported terminal")
	}
	if pit < 0 || pit > 5 {
		t.Errorf("pit = %d", pit)
	}
	if int(value) > board.Stones() {
		t.Errorf("value %d exceeds stones on board", value)
	}
}

func TestPublicSolveAndAudit(t *testing.T) {
	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide}
	l, err := retrograde.BuildLadder(cfg, 4, retrograde.Concurrent{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	slice := l.Slice(4)
	r, err := retrograde.Solve(slice, retrograde.Distributed{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := retrograde.Audit(slice, r); err != nil {
		t.Error(err)
	}
	if r.Sim == nil || r.Sim.Duration <= 0 {
		t.Error("distributed result lacks a simulation report")
	}
}

func TestPublicPackAndLoad(t *testing.T) {
	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide}
	l, err := retrograde.BuildLadder(cfg, 3, retrograde.Sequential{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	slice := l.Slice(3)
	tab, err := retrograde.PackResult(slice, l.Result(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "awari-3.radb")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := retrograde.LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < back.Size(); i++ {
		if back.Get(i) != l.Result(3).Values[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestAwariSize(t *testing.T) {
	if retrograde.AwariSize(13) != 2496144 {
		t.Error("AwariSize(13) wrong")
	}
}

func TestPublicTCPEngine(t *testing.T) {
	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide}
	l, err := retrograde.BuildLadder(cfg, 4, retrograde.TCP{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := retrograde.BuildLadder(cfg, 4, retrograde.Sequential{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 4; n++ {
		a, b := l.Result(n).Values, want.Result(n).Values
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rung %d differs at %d", n, i)
			}
		}
	}
}

func TestPublicKRK(t *testing.T) {
	g, err := retrograde.NewKRK(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := retrograde.Solve(g, retrograde.Concurrent{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := retrograde.Audit(g, r); err != nil {
		t.Error(err)
	}
	if _, err := retrograde.NewKRK(3); err == nil {
		t.Error("NewKRK(3) succeeded")
	}
}

func TestPublicRefine(t *testing.T) {
	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide, Refine: true}
	l, err := retrograde.BuildLadder(cfg, 5, retrograde.Sequential{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 5; n++ {
		if err := retrograde.AuditRefined(l.Slice(n), l.Result(n)); err != nil {
			t.Errorf("rung %d: %v", n, err)
		}
	}
}
