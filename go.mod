module retrograde

go 1.24
