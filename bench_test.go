// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table/figure of EXPERIMENTS.md (experiments run at Quick scale so
// `go test -bench=.` stays minutes, not hours; cmd/rabench runs the full
// Default scale). The last benchmarks are core micro-benchmarks of the
// engines themselves.
package retrograde_test

import (
	"io"
	"sync"
	"testing"

	"retrograde"
	"retrograde/internal/awari"
	"retrograde/internal/experiments"
	"retrograde/internal/ladder"
	"retrograde/internal/ra"
	"retrograde/internal/stats"
)

var benchEnv = sync.OnceValues(func() (*experiments.Env, error) {
	return experiments.NewEnv(experiments.Quick(), nil)
})

func env(b *testing.B) *experiments.Env {
	b.Helper()
	e, err := benchEnv()
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func renderDiscard(b *testing.B, t *stats.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if err := t.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE1DatabaseSizes regenerates the database-size/memory table
// (paper claim: huge internal memory; >600 MByte database).
func BenchmarkE1DatabaseSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderDiscard(b, experiments.E1DatabaseSizes(24), nil)
	}
}

// BenchmarkE2Sequential regenerates the uniprocessor baseline (paper:
// "one machine took 40 hours").
func BenchmarkE2Sequential(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2Sequential(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE3Speedup regenerates the speedup-vs-processors figure
// (paper: speedup 48 on 64 processors).
func BenchmarkE3Speedup(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3Speedup(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE4Combining regenerates the combining-buffer sweep (paper:
// "overhead can be reduced drastically using message combining").
func BenchmarkE4Combining(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4Combining(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE4bAcrossProcs regenerates the naive-vs-combined table across
// processor counts.
func BenchmarkE4bAcrossProcs(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4bAcrossProcs(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE5Traffic regenerates the traffic breakdown.
func BenchmarkE5Traffic(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5Traffic(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE6Memory regenerates the memory-scaling tables (paper: the
// >600 MByte database fits once distributed).
func BenchmarkE6Memory(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.E6Memory(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			renderDiscard(b, t, nil)
		}
	}
}

// BenchmarkE7SharedMemory regenerates the real goroutine speedup anchor.
func BenchmarkE7SharedMemory(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E7SharedMemory(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE10HotPath regenerates the hot-path cost table (packed state,
// pooled batches, self-delivery).
func BenchmarkE10HotPath(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10HotPath(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkA1Partition regenerates the partition-map ablation.
func BenchmarkA1Partition(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.A1Partition(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkA2Interconnect regenerates the Ethernet-vs-crossbar ablation.
func BenchmarkA2Interconnect(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.A2Interconnect(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkA3Termination regenerates the wave/termination protocol table.
func BenchmarkA3Termination(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.A3Termination(e)
		renderDiscard(b, t, err)
	}
}

// Engine micro-benchmarks on the same 7-stone awari rung.

func benchLadder(b *testing.B) *ladder.Ladder {
	b.Helper()
	e := env(b)
	return e.Ladder
}

// BenchmarkEngineSequential measures the sequential engine end to end.
func BenchmarkEngineSequential(b *testing.B) {
	l := benchLadder(b)
	slice := l.Slice(7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ra.SolveSequential(slice)
	}
	b.ReportMetric(float64(slice.Size()), "positions/op")
}

// BenchmarkEngineConcurrent measures the goroutine engine end to end.
func BenchmarkEngineConcurrent(b *testing.B) {
	l := benchLadder(b)
	slice := l.Slice(7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (ra.Concurrent{}).Solve(slice); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDistributed64 measures the 64-node simulated run
// (reported time is host wall time; the interesting output is virtual).
func BenchmarkEngineDistributed64(b *testing.B) {
	l := benchLadder(b)
	slice := l.Slice(7)
	b.ResetTimer()
	b.ReportAllocs()
	var virtual float64
	for i := 0; i < b.N; i++ {
		r, err := (ra.Distributed{Workers: 64}).Solve(slice)
		if err != nil {
			b.Fatal(err)
		}
		virtual = r.Sim.Duration.Seconds()
	}
	b.ReportMetric(virtual, "virtual-s/op")
}

// BenchmarkPublicLadderBuild measures the documented quickstart path.
func BenchmarkPublicLadderBuild(b *testing.B) {
	cfg := retrograde.LadderConfig{Rules: awari.Standard, Loop: awari.LoopOwnSide}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := retrograde.BuildLadder(cfg, 5, retrograde.Concurrent{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV1Generality regenerates the four-game oracle table.
func BenchmarkV1Generality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.V1Generality(8)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE8RealWire regenerates the real-TCP combining table.
func BenchmarkE8RealWire(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8RealWire(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkA4Asynchrony regenerates the sync-vs-async protocol ablation.
func BenchmarkA4Asynchrony(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.A4Asynchrony(e)
		renderDiscard(b, t, err)
	}
}

// BenchmarkE9Symmetry regenerates the KRK symmetry-reduction table.
func BenchmarkE9Symmetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9Symmetry()
		renderDiscard(b, t, err)
	}
}
