# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race vet ravet fuzz-smoke fmt check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# ravet is the project-specific analyzer suite (cmd/ravet): wire
# deadlines, pool discipline, error wrapping, SWAR/scalar lane-constant
# parity, determinism, goroutine tracking. It runs standalone here; CI
# also exercises the `go vet -vettool` integration path.
ravet:
	$(GO) run ./cmd/ravet ./...

# Ten seconds per fuzz target — the CI smoke budget, not a soak.
fuzz-smoke:
	$(GO) test -fuzz=FuzzApplyWord -fuzztime=10s ./internal/ra/
	$(GO) test -fuzz=FuzzZdbRoundtrip -fuzztime=10s ./internal/zdb/
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/server/
	$(GO) test -fuzz=FuzzSpillRoundtrip -fuzztime=10s ./internal/oocore/

fmt:
	gofmt -l -w .

check: build vet ravet test
