// Command raserve serves endgame databases over the network: a query
// server with an on-demand shard cache, so a game-playing program can
// probe databases far larger than its own memory.
//
// Usage:
//
//	raserve -db dbs/ -listen :7101 -mem 256MiB
//
// The server discovers every *.radb table and *.rafy family in -db at
// startup (headers only), loads shards on first use, and evicts them
// LRU when the resident set exceeds -mem. One listener answers both the
// binary batch protocol (see internal/server) and plain HTTP:
//
//	curl 'localhost:7101/value?board=0,0,0,0,2,1,1,0,0,0,0,2'
//	curl 'localhost:7101/stats'
//
// SIGINT/SIGTERM drains in-flight queries before exiting.
//
// For fault drills, -faults injects a deterministic fault schedule into
// every accepted connection (see internal/faultnet):
//
//	raserve -db dbs/ -faults seed=7,maxread=3,delay=2ms,every=10
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"retrograde/internal/awari"
	"retrograde/internal/faultnet"
	"retrograde/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "raserve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("db", ".", "directory holding *.radb and *.rafy databases")
	listen := flag.String("listen", "127.0.0.1:7101", "address to listen on")
	mem := flag.String("mem", "0", "shard-cache memory budget, e.g. 512MiB (0 = unlimited)")
	workers := flag.Int("workers", 0, "query worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "bounded batch queue depth (0 = default)")
	slamName := flag.String("grandslam", "allowed", "grand-slam rule the databases were built with")
	faults := flag.String("faults", "", "inject faults into every connection, e.g. seed=7,maxread=3,delay=2ms,every=10,cut=4096 (testing only)")
	flag.Parse()

	budget, err := parseBytes(*mem)
	if err != nil {
		return err
	}
	rules := awari.Standard
	if *slamName == "forfeit" {
		rules.GrandSlam = awari.GrandSlamForfeit
	}
	plan, err := faultnet.Parse(*faults)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Dir:        *dir,
		Rules:      rules,
		MemBudget:  budget,
		Workers:    *workers,
		QueueDepth: *queue,
	}
	if *faults != "" {
		cfg.WrapConn = plan.Wrapper()
		fmt.Printf("raserve: FAULT INJECTION ACTIVE: %s\n", plan)
	}

	s, err := server.Start(*listen, cfg)
	if err != nil {
		return err
	}

	keys := s.Cache().Keys()
	fmt.Printf("raserve: %d shards in %s", len(keys), *dir)
	if max := s.Cache().AwariMax(); max >= 0 {
		fmt.Printf(", awari boards up to %d stones", max)
	}
	fmt.Println()
	for _, si := range s.Cache().Snapshot() {
		fmt.Printf("  %-20s %8s  %12d entries  %10d bytes\n", si.Key, si.Kind, si.Entries, si.Bytes)
	}
	fmt.Printf("listening on %s (binary protocol + HTTP)\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("raserve: draining...")
	return s.Close()
}

// parseBytes reads a byte count with an optional KiB/MiB/GiB (or KB/MB/GB,
// decimal) suffix.
func parseBytes(s string) (uint64, error) {
	str := strings.TrimSpace(s)
	mult := uint64(1)
	for _, u := range []struct {
		suffix string
		mult   uint64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"B", 1},
	} {
		if strings.HasSuffix(str, u.suffix) {
			str, mult = strings.TrimSuffix(str, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(str), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q (want e.g. 512MiB)", s)
	}
	return n * mult, nil
}
