// Command rabench regenerates the paper's evaluation: every table and
// figure of EXPERIMENTS.md, printed as aligned text tables.
//
// Usage:
//
//	rabench                       # default scale: awari-11, 1..64 processors
//	rabench -scale quick          # seconds-long smoke run
//	rabench -scale large          # awari-12 (several minutes)
//	rabench -stones 10            # override the headline database
//	rabench -json results.json    # also dump every table as JSON
//	rabench -cpuprofile cpu.out   # profile the hot path with pprof
//	rabench -smoke                # E14 kernel check only; exit 1 if SWAR < scalar
//	rabench -oocore               # E15 out-of-core cap sweep only; exit 1 on any
//	                              # checksum divergence from the in-core oracle
//	rabench -writeback            # E16 sync-vs-pipelined spill A/B only; exit 1
//	                              # on any checksum divergence on either side
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"retrograde/internal/experiments"
)

func main() {
	// Deferred profile writers must run before exit; keep os.Exit out of
	// the frame that owns them.
	os.Exit(run())
}

func run() int {
	scaleName := flag.String("scale", "default", "experiment scale: quick, default, large")
	stones := flag.Int("stones", 0, "override the headline awari database (stone count)")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	jsonPath := flag.String("json", "", "also write all tables as one JSON file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	smoke := flag.Bool("smoke", false, "run only the E14 kernel comparison and fail if SWAR is slower than scalar")
	oocoreRun := flag.Bool("oocore", false, "run only the E15 out-of-core cap sweep and fail on any divergence from the in-core oracle")
	writebackRun := flag.Bool("writeback", false, "run only the E16 sync-vs-pipelined spill A/B and fail on any divergence from the in-core oracle")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "default":
		scale = experiments.Default()
	case "large":
		scale = experiments.Large()
	default:
		fmt.Fprintf(os.Stderr, "rabench: unknown scale %q (want quick, default or large)\n", *scaleName)
		return 2
	}
	if *stones > 0 {
		scale.Stones = *stones
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			}
		}()
	}
	if *smoke {
		if err := experiments.E14Smoke(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
		return 0
	}
	if *oocoreRun {
		if err := experiments.E15Smoke(scale, os.Stdout, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
		return 0
	}
	if *writebackRun {
		if err := experiments.E16Smoke(scale, os.Stdout, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			return 1
		}
		return 0
	}
	if err := experiments.RunAll(scale, os.Stdout, !*quiet, *csvDir, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
		return 1
	}
	return 0
}
