// Command rabench regenerates the paper's evaluation: every table and
// figure of EXPERIMENTS.md, printed as aligned text tables.
//
// Usage:
//
//	rabench                # default scale: awari-11, 1..64 processors
//	rabench -scale quick   # seconds-long smoke run
//	rabench -scale large   # awari-12 (several minutes)
//	rabench -stones 10     # override the headline database
package main

import (
	"flag"
	"fmt"
	"os"

	"retrograde/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: quick, default, large")
	stones := flag.Int("stones", 0, "override the headline awari database (stone count)")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "default":
		scale = experiments.Default()
	case "large":
		scale = experiments.Large()
	default:
		fmt.Fprintf(os.Stderr, "rabench: unknown scale %q (want quick, default or large)\n", *scaleName)
		os.Exit(2)
	}
	if *stones > 0 {
		scale.Stones = *stones
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := experiments.RunAll(scale, os.Stdout, !*quiet, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "rabench: %v\n", err)
		os.Exit(1)
	}
}
