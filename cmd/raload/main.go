// Command raload drives a serving tier — one raserve or a rabroker
// fleet — with a reproducible query stream and reports tail latency.
//
// Usage:
//
//	raload -server localhost:7100 -stones 7 -qps 2000 -duration 10s
//	raload -server localhost:7100 -stones 7 -n 500 -seed 42 -json
//
// With -qps the generator is OPEN-LOOP: batches depart on a fixed
// schedule whether or not earlier ones have returned, and each latency
// is measured from the batch's scheduled departure. A server that
// stalls therefore shows the stall in its tail quantiles instead of
// quietly slowing the generator down (closed-loop "coordinated
// omission"). -qps 0 falls back to a closed loop of -concurrency
// workers, which measures per-call service time under saturation.
//
// The stream is deterministic: batch i is derived from -seed and i
// alone, with boards drawn from rungs 1..-stones weighted by rung size
// (matching how often a search actually probes each rung). Answers fold
// into an order-independent checksum, so two runs with the same -seed,
// -stones, -batch and -n — say one against a backend directly and one
// through a broker — must print the same checksum if and only if the
// tiers agree on every answer. -verify additionally checks each value
// against local databases and counts mismatches.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/server"
	"retrograde/internal/stats"
	"retrograde/internal/zdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "raload: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	stones      int
	batch       int
	qps         float64
	concurrency int
	conns       int
	n           int
	duration    time.Duration
	seed        int64
	verifyDir   string
	retries     int
	timeout     time.Duration
	jsonOut     bool
}

// report is the run summary; the -json shape experiment harnesses parse.
type report struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"`
	TargetQPS   float64 `json:"targetQps,omitempty"`
	Batches     uint64  `json:"batches"`
	Queries     uint64  `json:"queries"`
	OK          uint64  `json:"ok"`
	Errors      uint64  `json:"errors"`
	QueryErrors uint64  `json:"queryErrors"`
	Mismatches  uint64  `json:"mismatches"`
	Shed        uint64  `json:"shed"`
	Checksum    string  `json:"checksum"`
	Seconds     float64 `json:"seconds"`
	AchievedQPS float64 `json:"achievedQps"`
	LatencyMean float64 `json:"latencyMeanMicros"`
	LatencyP50  uint64  `json:"latencyP50Micros"`
	LatencyP99  uint64  `json:"latencyP99Micros"`
	LatencyP999 uint64  `json:"latencyP999Micros"`
	Client      struct {
		Retries        uint64 `json:"retries"`
		Reconnects     uint64 `json:"reconnects"`
		UnknownReplies uint64 `json:"unknownReplies"`
	} `json:"client"`
}

func run() error {
	var o options
	flag.StringVar(&o.addr, "server", "", "raserve or rabroker address (required)")
	flag.IntVar(&o.stones, "stones", 7, "draw boards from rungs 1..n (databases must cover them)")
	flag.IntVar(&o.batch, "batch", 16, "queries per batch")
	flag.Float64Var(&o.qps, "qps", 0, "open-loop batches per second (0 = closed loop)")
	flag.IntVar(&o.concurrency, "concurrency", 4, "closed-loop workers (-qps 0)")
	flag.IntVar(&o.conns, "conns", 4, "client connections to spread batches over")
	flag.IntVar(&o.n, "n", 0, "stop after this many batches (0 = run for -duration)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length when -n is 0")
	flag.Int64Var(&o.seed, "seed", 1, "stream seed; same seed + count = same checksum")
	flag.StringVar(&o.verifyDir, "verify", "", "directory of awari-<n>.radb files to check every value against")
	flag.IntVar(&o.retries, "retries", 1, "client retries per call")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-call deadline (0 = none)")
	flag.BoolVar(&o.jsonOut, "json", false, "print the report as JSON")
	flag.Parse()

	if o.addr == "" {
		return fmt.Errorf("-server is required")
	}
	if o.stones < 1 || o.batch < 1 {
		return fmt.Errorf("-stones and -batch must be positive")
	}

	var lookup awari.Lookup
	if o.verifyDir != "" {
		var err error
		if lookup, err = loadLocal(o.verifyDir, o.stones); err != nil {
			return err
		}
	}

	clients := make([]*server.Client, o.conns)
	for i := range clients {
		c, err := server.DialConfig(o.addr, server.ClientConfig{Retries: o.retries, Timeout: o.timeout})
		if err != nil {
			return err
		}
		clients[i] = c
		defer c.Close()
	}

	l := &loader{o: o, clients: clients, lookup: lookup}
	start := time.Now()
	if o.qps > 0 {
		l.openLoop(start)
	} else {
		l.closedLoop(start)
	}
	elapsed := time.Since(start)

	r := l.report(elapsed)
	for _, c := range clients {
		st := c.Stats()
		r.Client.Retries += st.Retries
		r.Client.Reconnects += st.Reconnects
		r.Client.UnknownReplies += st.UnknownReplies
	}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	printReport(r)
	if r.OK == 0 {
		return fmt.Errorf("no batch succeeded")
	}
	return nil
}

// loader runs the stream and accumulates results; all fields are safe
// for concurrent batches.
type loader struct {
	o       options
	clients []*server.Client
	lookup  awari.Lookup

	batches     atomic.Uint64
	ok          atomic.Uint64
	errs        atomic.Uint64
	queryErrs   atomic.Uint64
	queries     atomic.Uint64
	mismatches  atomic.Uint64
	shed        atomic.Uint64
	checksum    atomic.Uint64 // wrapping sum of per-answer hashes: order-independent
	latencyHist stats.Histogram
}

// genBatch derives batch i's queries from the seed and i alone, so any
// interleaving of workers produces the same query multiset. Rungs are
// drawn proportionally to their position count: the biggest rung gets
// the most traffic, like a real search frontier.
func genBatch(seed int64, i, stones, batch int) ([]server.Query, []int, []uint64) {
	rng := rand.New(rand.NewSource(seed + int64(i)*0x6a09e667f3bcc909))
	cum := make([]uint64, stones+1) // cum[r] = positions in rungs 1..r
	for r := 1; r <= stones; r++ {
		cum[r] = cum[r-1] + awari.Size(r)
	}
	qs := make([]server.Query, batch)
	rungs := make([]int, batch)
	idxs := make([]uint64, batch)
	for j := range qs {
		x := uint64(rng.Int63n(int64(cum[stones])))
		r := 1
		for cum[r] <= x {
			r++
		}
		idx := x - cum[r-1]
		var pits [awari.Pits]int
		awari.Space(r).Unrank(idx, pits[:])
		var b awari.Board
		for k, c := range pits {
			b[k] = int8(c)
		}
		qs[j] = server.Query{Kind: server.KindBestMove, Board: b}
		rungs[j], idxs[j] = r, idx
	}
	return qs, rungs, idxs
}

// answerHash folds one answer into a 64-bit mix; summed over a run it
// forms the order-independent stream checksum.
func answerHash(rung int, idx uint64, a server.Answer) uint64 {
	x := uint64(rung)<<56 ^ idx<<8 ^ uint64(uint8(a.Value))<<1 ^ uint64(uint8(a.Pit))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// oneBatch sends batch i and folds its results in. The latency
// observation is the caller's: open loop measures from scheduled
// departure, closed loop from the call.
func (l *loader) oneBatch(i int, c *server.Client) bool {
	qs, rungs, idxs := genBatch(l.o.seed, i, l.o.stones, l.o.batch)
	l.batches.Add(1)
	as, err := c.Do(qs)
	if err != nil {
		l.errs.Add(1)
		return false
	}
	l.ok.Add(1)
	l.queries.Add(uint64(len(qs)))
	for j, a := range as {
		if a.Err != "" {
			l.queryErrs.Add(1)
			continue
		}
		l.checksum.Add(answerHash(rungs[j], idxs[j], a))
		if l.lookup != nil && a.Value != l.lookup(rungs[j], idxs[j]) {
			l.mismatches.Add(1)
		}
	}
	return true
}

// openLoop departs batches on a fixed schedule regardless of completions.
// Pending batches are capped only far beyond any sane backlog (so a dead
// server cannot OOM the generator); batches shed at that cap are counted,
// never silently dropped.
func (l *loader) openLoop(start time.Time) {
	interval := time.Duration(float64(time.Second) / l.o.qps)
	const maxPending = 16384
	sem := make(chan struct{}, maxPending)
	var wg sync.WaitGroup
	deadline := start.Add(l.o.duration)
	for i := 0; l.o.n > 0 && i < l.o.n || l.o.n == 0 && time.Now().Before(deadline); i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			l.shed.Add(1)
			continue
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			if l.oneBatch(i, l.clients[i%len(l.clients)]) {
				l.latencyHist.Observe(uint64(time.Since(sched).Microseconds()))
			}
		}(i, sched)
	}
	wg.Wait()
}

// closedLoop saturates with a fixed worker pool; batch indices stay
// dense so the checksum covers exactly batches 0..total-1 when -n set.
func (l *loader) closedLoop(start time.Time) {
	var next atomic.Int64
	deadline := start.Add(l.o.duration)
	var wg sync.WaitGroup
	for w := 0; w < l.o.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := l.clients[w%len(l.clients)]
			for {
				i := int(next.Add(1) - 1)
				if l.o.n > 0 && i >= l.o.n || l.o.n == 0 && !time.Now().Before(deadline) {
					return
				}
				t0 := time.Now()
				if l.oneBatch(i, c) {
					l.latencyHist.Observe(uint64(time.Since(t0).Microseconds()))
				}
			}
		}(w)
	}
	wg.Wait()
}

func (l *loader) report(elapsed time.Duration) *report {
	r := &report{
		Target:      l.o.addr,
		Mode:        "closed",
		Batches:     l.batches.Load(),
		Queries:     l.queries.Load(),
		OK:          l.ok.Load(),
		Errors:      l.errs.Load(),
		QueryErrors: l.queryErrs.Load(),
		Mismatches:  l.mismatches.Load(),
		Shed:        l.shed.Load(),
		Checksum:    fmt.Sprintf("%016x", l.checksum.Load()),
		Seconds:     elapsed.Seconds(),
		LatencyMean: l.latencyHist.Mean(),
		LatencyP50:  l.latencyHist.Quantile(0.50),
		LatencyP99:  l.latencyHist.Quantile(0.99),
		LatencyP999: l.latencyHist.Quantile(0.999),
	}
	if l.o.qps > 0 {
		r.Mode, r.TargetQPS = "open", l.o.qps
	}
	if elapsed > 0 {
		r.AchievedQPS = float64(r.OK) / elapsed.Seconds()
	}
	return r
}

func printReport(r *report) {
	t := stats.NewTable(fmt.Sprintf("raload: %s loop against %s", r.Mode, r.Target),
		"metric", "value")
	t.Row("batches ok / sent", fmt.Sprintf("%d / %d", r.OK, r.Batches))
	t.Row("queries answered", r.Queries)
	t.Row("transport errors", r.Errors)
	t.Row("per-query errors", r.QueryErrors)
	if r.Mismatches > 0 {
		t.Row("VALUE MISMATCHES", r.Mismatches)
	}
	if r.Shed > 0 {
		t.Row("shed (generator cap)", r.Shed)
	}
	t.Row("achieved batch/s", fmt.Sprintf("%.1f", r.AchievedQPS))
	t.Row("latency mean", fmt.Sprintf("%.0fµs", r.LatencyMean))
	t.Row("latency p50", fmt.Sprintf("%dµs", r.LatencyP50))
	t.Row("latency p99", fmt.Sprintf("%dµs", r.LatencyP99))
	t.Row("latency p999", fmt.Sprintf("%dµs", r.LatencyP999))
	t.Row("answer checksum", r.Checksum)
	if r.Client.Retries+r.Client.Reconnects > 0 {
		t.Note("client rode out %d retries, %d reconnects", r.Client.Retries, r.Client.Reconnects)
	}
	t.Render(os.Stdout)
}

// loadLocal opens rungs 1..stones for value verification, sniffing v1
// vs v2 (block-compressed) per file.
func loadLocal(dir string, stones int) (awari.Lookup, error) {
	gets := make([]func(uint64) game.Value, stones+1)
	for n := 1; n <= stones; n++ {
		path := filepath.Join(dir, fmt.Sprintf("awari-%d.radb", n))
		info, err := db.Stat(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("-verify: %s missing (need rungs 1..%d)", path, stones)
			}
			return nil, err
		}
		if info.Version == db.Version2 {
			z, err := zdb.Load(path)
			if err != nil {
				return nil, err
			}
			gets[n] = z.Get
		} else {
			t, err := db.Load(path)
			if err != nil {
				return nil, err
			}
			gets[n] = t.Get
		}
	}
	return func(n int, idx uint64) game.Value { return gets[n](idx) }, nil
}
