// Command raquery answers questions from awari databases built by
// rabuild: the value of a position, the best move, and the optimal line.
//
// Usage:
//
//	raquery -db dbs/ -board 0,0,0,0,2,1,1,0,0,0,0,2
//	raquery -db dbs/ -board 1,1,0,0,0,1,2,0,0,0,0,0 -line 10
//
// The board lists pits 0..11 from the mover's perspective (0..5 mover's
// row, 6..11 opponent's). Databases awari-0.radb .. awari-<n>.radb for
// the board's stone count must exist in -db. Both plain (v1) and
// block-compressed (v2) files are accepted; the version is sniffed from
// the header, so a directory may mix the two.
//
// With -server the same questions are answered by a running raserve
// instead of local files, through the retrying client — reconnecting
// with backoff on connection loss and backing off on overload replies.
// The address may equally be a rabroker fronting a fleet; the broker
// speaks the same protocol, so nothing else changes:
//
//	raquery -server localhost:7101 -board 0,0,0,0,2,1,1,0,0,0,0,2
//	raquery -server localhost:7100 -board ... -count 100 -retries 5 -timeout 10s
//
// -count repeats the query (a steady stream, for drills and smoke
// tests); the exit status reports whether every call eventually
// succeeded.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/server"
	"retrograde/internal/zdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "raquery: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("db", ".", "directory holding awari-<n>.radb files")
	family := flag.String("family", "", "single .rafy family file (overrides -db)")
	boardSpec := flag.String("board", "", "comma-separated pit counts, mover first (12 values)")
	line := flag.Int("line", 0, "play out this many optimal plies")
	slamName := flag.String("grandslam", "allowed", "grand-slam rule the databases were built with")
	serverAddr := flag.String("server", "", "query a running raserve or rabroker at this address instead of local files")
	count := flag.Int("count", 1, "with -server: repeat the query this many times")
	retries := flag.Int("retries", 3, "with -server: retries per call (reconnect on loss, back off on overload)")
	timeout := flag.Duration("timeout", 10*time.Second, "with -server: per-call deadline (0 = none)")
	flag.Parse()
	if *boardSpec == "" {
		return fmt.Errorf("-board is required")
	}
	board, err := awari.ParseBoard(*boardSpec)
	if err != nil {
		return err
	}
	rules := awari.Standard
	if *slamName == "forfeit" {
		rules.GrandSlam = awari.GrandSlamForfeit
	}

	if *serverAddr != "" {
		return queryServer(*serverAddr, board, *line, *count, *retries, *timeout)
	}

	stones := board.Stones()
	var lookup awari.Lookup
	if *family != "" {
		fam, err := db.LoadFamily(*family)
		if err != nil {
			return err
		}
		if fam.Pits() != awari.Pits || fam.MaxTotal() < stones {
			return fmt.Errorf("%s covers %d pits up to %d stones; board needs %d", *family, fam.Pits(), fam.MaxTotal(), stones)
		}
		lookup = func(n int, idx uint64) game.Value { return fam.Get(n, idx) }
	} else {
		gets := make([]func(uint64) game.Value, stones+1)
		for n := 0; n <= stones; n++ {
			path := filepath.Join(*dir, fmt.Sprintf("awari-%d.radb", n))
			get, size, err := loadRung(path)
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					return fmt.Errorf("the %d-stone rung is missing (%s does not exist; the board needs rungs 0..%d).\nBuild the ladder with:\n  rabuild -stones %d -out %s",
						n, path, stones, stones, *dir)
				}
				return fmt.Errorf("loading the %d-stone database: %w", n, err)
			}
			if size != awari.Size(n) {
				return fmt.Errorf("awari-%d.radb holds %d entries, want %d", n, size, awari.Size(n))
			}
			gets[n] = get
		}
		lookup = func(n int, idx uint64) game.Value { return gets[n](idx) }
	}

	cur := board
	return play(rules, cur, lookup, *line)
}

// queryServer answers from a running raserve through the retrying
// client. With count > 1 the same query streams repeatedly — a drill
// workload whose exit status says whether the client rode out whatever
// happened to the server in between.
func queryServer(addr string, board awari.Board, line, count, retries int, timeout time.Duration) error {
	c, err := server.DialConfig(addr, server.ClientConfig{Retries: retries, Timeout: timeout})
	if err != nil {
		return err
	}
	defer c.Close()

	for i := 0; i < count; i++ {
		pit, v, err := c.BestMove(board)
		if err != nil {
			return fmt.Errorf("call %d/%d: %w", i+1, count, err)
		}
		if count > 1 {
			fmt.Printf("call %3d/%d  value=%d", i+1, count, v)
			if pit >= 0 {
				fmt.Printf("  best pit %d", pit)
			}
			fmt.Println()
			continue
		}
		fmt.Printf("stones=%d value=%d (mover captures %d of %d)\n", board.Stones(), v, v, board.Stones())
		if pit >= 0 {
			fmt.Printf("best move: pit %d\n", pit)
		} else {
			fmt.Println("terminal position")
		}
		if line > 0 {
			_, moves, err := c.Line(board, line)
			if err != nil {
				return err
			}
			cur := board
			for ply, p := range moves {
				cur, _ = awari.Standard.Apply(cur, int(p))
				v, err := c.Value(cur)
				if err != nil {
					return err
				}
				fmt.Printf("ply %2d  plays pit %d  ->  %v  value=%d\n", ply+1, p, cur, v)
			}
		}
	}
	if st := c.Stats(); st.Reconnects > 0 || st.UnknownReplies > 0 {
		fmt.Printf("client: %d reconnects, %d unknown replies\n", st.Reconnects, st.UnknownReplies)
	}
	return nil
}

// loadRung sniffs the on-disk version and returns a random-access getter
// for either format.
func loadRung(path string) (get func(uint64) game.Value, size uint64, err error) {
	info, err := db.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	if info.Version == db.Version2 {
		z, err := zdb.Load(path)
		if err != nil {
			return nil, 0, err
		}
		return z.Get, z.Size(), nil
	}
	t, err := db.Load(path)
	if err != nil {
		return nil, 0, err
	}
	return t.Get, t.Size(), nil
}

func play(rules awari.Rules, cur awari.Board, lookup awari.Lookup, line int) error {
	for ply := 0; ; ply++ {
		n := cur.Stones()
		v := lookup(n, awari.Rank(cur))
		note := ""
		if _, bv, ok := awari.BestMove(rules, cur, lookup); ok && bv != v {
			// The database value of a cycle position reflects the
			// repetition split, not a conversion any single move forces.
			note = fmt.Sprintf("  [cycle-valued: best conversion %d]", bv)
		}
		fmt.Printf("ply %2d  %v  stones=%2d  value=%d (mover captures %d of %d)%s\n", ply, cur, n, v, v, n, note)
		if ply >= line {
			if line == 0 {
				pit, mv, ok := awari.BestMove(rules, cur, lookup)
				if ok {
					fmt.Printf("best move: pit %d (worth %d)\n", pit, mv)
				} else {
					fmt.Println("terminal position")
				}
			}
			return nil
		}
		pit, _, ok := awari.BestMove(rules, cur, lookup)
		if !ok {
			fmt.Println("terminal position reached")
			return nil
		}
		child, captured := rules.Apply(cur, pit)
		fmt.Printf("        plays pit %d, captures %d\n", pit, captured)
		cur = child
	}
}
