// Command raverify independently verifies awari databases.
//
// It rebuilds the ladder with two different engines (sequential and
// distributed), requires bit-identical results, runs the fixpoint audit
// on every rung, and — when -db is given — also compares against the
// packed files on disk. Block-compressed v2 files are checked per-block
// (the first corrupt block is named) and compared through both the
// streaming decoder and the random-access path.
//
// All files are checked even after a failure; the exit status is
// non-zero if any check failed, and a per-file summary is printed.
//
// Usage:
//
//	raverify -stones 8
//	raverify -stones 8 -db dbs/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/ladder"
	"retrograde/internal/ra"
	"retrograde/internal/stats"
	"retrograde/internal/zdb"
)

func main() {
	failed, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "raverify: FAIL: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "raverify: FAIL: %d check(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("raverify: OK")
}

// run returns the number of failed checks; a non-nil error means the
// verification itself could not proceed (bad flags, rebuild error).
func run() (int, error) {
	stones := flag.Int("stones", 7, "verify databases for 0..stones stones")
	dir := flag.String("db", "", "optional directory of awari-<n>.radb files to compare against")
	procs := flag.Int("procs", 8, "simulated nodes for the distributed rebuild")
	refine := flag.Bool("refine", false, "verify refined databases (use with -db when they were built with rabuild -refine)")
	flag.Parse()

	cfg := ladder.Config{Rules: awari.Standard, Loop: awari.LoopOwnSide, Refine: *refine}
	fmt.Printf("rebuilding 0..%d sequentially...\n", *stones)
	seq, err := ladder.Build(cfg, *stones, ra.Sequential{}, nil)
	if err != nil {
		return 0, err
	}
	fmt.Printf("rebuilding 0..%d on a %d-node simulated cluster...\n", *stones, *procs)
	dist, err := ladder.Build(cfg, *stones, ra.Distributed{Workers: *procs}, nil)
	if err != nil {
		return 0, err
	}
	failed := 0
	for n := 0; n <= *stones; n++ {
		a, b := seq.Result(n), dist.Result(n)
		if err := compareValues(a.Values, b.Values); err != nil {
			fmt.Printf("rung %-2d  FAIL: engines disagree: %v\n", n, err)
			failed++
			continue
		}
		audit := ra.Audit
		if *refine {
			audit = ra.AuditRefined
		}
		if err := audit(seq.Slice(n), a); err != nil {
			fmt.Printf("rung %-2d  FAIL: audit: %v\n", n, err)
			failed++
			continue
		}
		fmt.Printf("rung %-2d  %12s positions  engines agree, audit passed\n", n, stats.Count(uint64(len(a.Values))))
	}
	if *dir == "" {
		return failed, nil
	}
	ok := 0
	for n := 0; n <= *stones; n++ {
		path := filepath.Join(*dir, fmt.Sprintf("awari-%d.radb", n))
		if err := verifyFile(path, seq.Result(n).Values); err != nil {
			fmt.Printf("%s  FAIL: %v\n", path, err)
			failed++
		} else {
			fmt.Printf("%s  OK\n", path)
			ok++
		}
	}
	fmt.Printf("files: %d ok, %d failed of %d\n", ok, *stones+1-ok, *stones+1)
	return failed, nil
}

// verifyFile checks one on-disk database (either format) against the
// rebuilt values. For v2 files every block CRC is checked first, so a
// corrupt file is reported by block, and the values are compared through
// both the streaming decoder and the random-access path.
func verifyFile(path string, want []game.Value) error {
	info, err := db.Stat(path)
	if err != nil {
		return err
	}
	if info.Version != db.Version2 {
		t, err := db.Load(path)
		if err != nil {
			return err
		}
		if t.Size() != uint64(len(want)) {
			return fmt.Errorf("%d entries, want %d", t.Size(), len(want))
		}
		for i := uint64(0); i < t.Size(); i++ {
			if t.Get(i) != want[i] {
				return fmt.Errorf("entry %d is %d, want %d", i, t.Get(i), want[i])
			}
		}
		return nil
	}
	z, err := zdb.VerifyFile(path) // names the first corrupt block
	if err != nil {
		return err
	}
	if z.Size() != uint64(len(want)) {
		return fmt.Errorf("%d entries, want %d", z.Size(), len(want))
	}
	streamed, err := z.Unpack()
	if err != nil {
		return err
	}
	for i, v := range streamed {
		if v != want[i] {
			return fmt.Errorf("streaming decode: entry %d is %d, want %d", i, v, want[i])
		}
	}
	for i := uint64(0); i < z.Size(); i++ {
		if got := z.Get(i); got != want[i] {
			return fmt.Errorf("random access: entry %d is %d, want %d", i, got, want[i])
		}
	}
	return nil
}

func compareValues(a, b []game.Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("position %d (%d vs %d)", i, a[i], b[i])
		}
	}
	return nil
}
