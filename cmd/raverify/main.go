// Command raverify independently verifies awari databases.
//
// It rebuilds the ladder with two different engines (sequential and
// distributed), requires bit-identical results, runs the fixpoint audit
// on every rung, and — when -db is given — also compares against the
// packed files on disk.
//
// Usage:
//
//	raverify -stones 8
//	raverify -stones 8 -db dbs/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/ladder"
	"retrograde/internal/ra"
	"retrograde/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "raverify: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("raverify: OK")
}

func run() error {
	stones := flag.Int("stones", 7, "verify databases for 0..stones stones")
	dir := flag.String("db", "", "optional directory of awari-<n>.radb files to compare against")
	procs := flag.Int("procs", 8, "simulated nodes for the distributed rebuild")
	refine := flag.Bool("refine", false, "verify refined databases (use with -db when they were built with rabuild -refine)")
	flag.Parse()

	cfg := ladder.Config{Rules: awari.Standard, Loop: awari.LoopOwnSide, Refine: *refine}
	fmt.Printf("rebuilding 0..%d sequentially...\n", *stones)
	seq, err := ladder.Build(cfg, *stones, ra.Sequential{}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("rebuilding 0..%d on a %d-node simulated cluster...\n", *stones, *procs)
	dist, err := ladder.Build(cfg, *stones, ra.Distributed{Workers: *procs}, nil)
	if err != nil {
		return err
	}
	for n := 0; n <= *stones; n++ {
		a, b := seq.Result(n), dist.Result(n)
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				return fmt.Errorf("rung %d: engines disagree at position %d (%d vs %d)", n, i, a.Values[i], b.Values[i])
			}
		}
		audit := ra.Audit
		if *refine {
			audit = ra.AuditRefined
		}
		if err := audit(seq.Slice(n), a); err != nil {
			return fmt.Errorf("rung %d: %w", n, err)
		}
		fmt.Printf("rung %-2d  %12s positions  engines agree, audit passed\n", n, stats.Count(uint64(len(a.Values))))
	}
	if *dir == "" {
		return nil
	}
	for n := 0; n <= *stones; n++ {
		path := filepath.Join(*dir, fmt.Sprintf("awari-%d.radb", n))
		t, err := db.Load(path)
		if err != nil {
			return err
		}
		want := seq.Result(n).Values
		if t.Size() != uint64(len(want)) {
			return fmt.Errorf("%s: %d entries, want %d", path, t.Size(), len(want))
		}
		for i := uint64(0); i < t.Size(); i++ {
			if t.Get(i) != want[i] {
				return fmt.Errorf("%s: entry %d is %d, want %d", path, i, t.Get(i), want[i])
			}
		}
		fmt.Printf("%s matches the rebuild\n", path)
	}
	return nil
}
