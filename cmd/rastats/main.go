// Command rastats summarises built awari databases: per-rung value
// distributions and aggregate statistics, read straight from .radb files.
//
// Usage:
//
//	rastats -db dbs/ -stones 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rastats: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("db", ".", "directory holding awari-<n>.radb files")
	stones := flag.Int("stones", 8, "summarise rungs 0..stones")
	flag.Parse()

	t := stats.NewTable("awari database statistics",
		"stones", "positions", "bytes", "mean value", "mover majority %", "zero %", "all %")
	for n := 0; n <= *stones; n++ {
		path := filepath.Join(*dir, fmt.Sprintf("awari-%d.radb", n))
		table, err := db.Load(path)
		if err != nil {
			return err
		}
		if table.Size() != awari.Size(n) {
			return fmt.Errorf("%s holds %d entries, want %d", path, table.Size(), awari.Size(n))
		}
		hist := make([]uint64, n+1)
		var sum uint64
		var majority uint64
		for i := uint64(0); i < table.Size(); i++ {
			v := int(table.Get(i))
			if v > n {
				return fmt.Errorf("%s entry %d holds %d, above the stone total %d", path, i, v, n)
			}
			hist[v]++
			sum += uint64(v)
			if 2*v > n {
				majority++
			}
		}
		mean := 0.0
		if table.Size() > 0 {
			mean = float64(sum) / float64(table.Size())
		}
		t.Row(n,
			stats.Count(table.Size()),
			stats.Bytes(table.Bytes()),
			mean,
			fmt.Sprintf("%.1f", 100*float64(majority)/float64(table.Size())),
			fmt.Sprintf("%.1f", 100*float64(hist[0])/float64(table.Size())),
			fmt.Sprintf("%.1f", 100*float64(hist[n])/float64(table.Size())))
	}
	t.Note("mean value is the stones the mover captures on average over all positions")
	t.Note("by zero-sum symmetry the mean tends toward n/2 as cyclic splits dominate")
	return t.Render(os.Stdout)
}
