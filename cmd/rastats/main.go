// Command rastats summarises built awari databases: per-rung value
// distributions, file sizes, and — for block-compressed v2 files —
// compression ratios and codec mixes, read straight from .radb files.
//
// Usage:
//
//	rastats -db dbs/ -stones 8
//	rastats -db dbs/ -stones 8 -json stats.json
//	rastats -spill dbs/spill/awari-8     # summarise an out-of-core spill store
//
// -spill inspects an out-of-core spill directory instead of databases:
// block files on disk, total spill bytes, and — when a checkpoint
// manifest is present — the interrupted solve it would resume.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retrograde/internal/analysis"
	"retrograde/internal/awari"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/oocore"
	"retrograde/internal/stats"
	"retrograde/internal/zdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rastats: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("db", ".", "directory holding awari-<n>.radb files")
	stones := flag.Int("stones", 8, "summarise rungs 0..stones")
	jsonPath := flag.String("json", "", "also write the table as one JSON file")
	spillDir := flag.String("spill", "", "summarise the out-of-core spill store in this directory instead")
	flag.Parse()

	if *spillDir != "" {
		return spillReport(*spillDir)
	}

	t := stats.NewTable("awari database statistics",
		"stones", "positions", "packed", "file", "ratio", "codecs",
		"mean value", "mover majority %", "zero %", "all %")
	for n := 0; n <= *stones; n++ {
		path := filepath.Join(*dir, fmt.Sprintf("awari-%d.radb", n))
		values, packed, fileBytes, codecs, err := loadValues(path)
		if err != nil {
			return err
		}
		if uint64(len(values)) != awari.Size(n) {
			return fmt.Errorf("%s holds %d entries, want %d", path, len(values), awari.Size(n))
		}
		hist := make([]uint64, n+1)
		var sum uint64
		var majority uint64
		for i, val := range values {
			v := int(val)
			if v > n {
				return fmt.Errorf("%s entry %d holds %d, above the stone total %d", path, i, v, n)
			}
			hist[v]++
			sum += uint64(v)
			if 2*v > n {
				majority++
			}
		}
		size := uint64(len(values))
		mean := 0.0
		if size > 0 {
			mean = float64(sum) / float64(size)
		}
		t.Row(n,
			stats.Count(size),
			stats.Bytes(packed),
			stats.Bytes(fileBytes),
			fmt.Sprintf("%.2f", float64(fileBytes)/float64(max(packed, 1))),
			codecs,
			mean,
			fmt.Sprintf("%.1f", 100*float64(majority)/float64(size)),
			fmt.Sprintf("%.1f", 100*float64(hist[0])/float64(size)),
			fmt.Sprintf("%.1f", 100*float64(hist[n])/float64(size)))
	}
	t.Note("packed is the v1 bit-packed payload size; file is the stored payload (v2 = blocks + directory)")
	t.Note("codecs counts v2 blocks per codec: raw, narrowed, run-length, huffman")
	t.Note("mean value is the stones the mover captures on average over all positions")
	t.Note("by zero-sum symmetry the mean tends toward n/2 as cyclic splits dominate")
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		prov := stats.Provenance{
			Tool:       "rastats",
			RavetSuite: analysis.Version,
			Analyzers:  len(analysis.Suite()),
		}
		if err := stats.WriteJSON(f, prov, []stats.NamedTable{{ID: "rastats", Table: t}}); err != nil {
			return err
		}
	}
	return nil
}

// spillReport prints what an out-of-core spill directory holds: the
// block files and, when a manifest is present, the checkpointed solve a
// rerun would resume.
func spillReport(dir string) error {
	info, err := oocore.InspectDir(dir)
	if err != nil {
		return err
	}
	fmt.Printf("spill store %s\n", info.Dir)
	fmt.Printf("  block files   %d (%s)\n", info.BlockFiles, stats.Bytes(info.SpillBytes))
	if !info.HasManifest {
		fmt.Printf("  manifest      none (no interrupted solve to resume)\n")
		return nil
	}
	fmt.Printf("  manifest      checkpoint after wave %d (%d checkpoints so far)\n", info.Waves, info.Checkpoints)
	fmt.Printf("  solve         %s positions, %s kernel, %d blocks of %s\n",
		stats.Count(info.Size), info.Kernel, info.Blocks, stats.Count(info.BlockLen))
	fmt.Printf("  parked runs   %s cross-block update runs awaiting delivery\n", stats.Count(info.Pending))
	fmt.Printf("  spill I/O     %s spills (%s written), %s reloads (%s read)\n",
		stats.Count(info.Spilled), stats.Bytes(info.BytesWritten),
		stats.Count(info.Reloaded), stats.Bytes(info.BytesRead))
	fmt.Printf("  scheduler     %d/%d prefetch hits, %d write stalls\n",
		info.PrefetchHits, info.PrefetchIssued, info.WriteStalls)
	return nil
}

// loadValues reads a v1 or v2 database, returning its decoded values,
// the v1-equivalent packed payload size, the stored payload size, and a
// codec-mix summary ("-" for v1 files).
func loadValues(path string) (values []game.Value, packed, fileBytes uint64, codecs string, err error) {
	info, err := db.Stat(path)
	if err != nil {
		return nil, 0, 0, "", err
	}
	if info.Version == db.Version2 {
		z, err := zdb.Load(path)
		if err != nil {
			return nil, 0, 0, "", err
		}
		values, err = z.Unpack()
		if err != nil {
			return nil, 0, 0, "", err
		}
		raw, narrow, rle, huff := z.CodecCounts()
		return values, z.RawBytes(), z.Bytes(),
			fmt.Sprintf("r%d n%d l%d h%d", raw, narrow, rle, huff), nil
	}
	table, err := db.Load(path)
	if err != nil {
		return nil, 0, 0, "", err
	}
	values = make([]game.Value, table.Size())
	for i := range values {
		values[i] = table.Get(uint64(i))
	}
	return values, table.Bytes(), table.Bytes(), "-", nil
}
