// Command rabuild computes endgame databases by retrograde analysis and
// writes them as packed, checksummed .radb files.
//
// Usage:
//
//	rabuild -stones 9 -out dbs/                     # awari ladder 0..9, shared-memory engine
//	rabuild -stones 9 -refine -out dbs/             # with cycle-value refinement
//	rabuild -stones 9 -engine distributed -procs 64 # top rung on the simulated cluster
//	rabuild -game nim -heaps 3 -max 7 -out dbs/     # a Nim database
//	rabuild -game ttt -out dbs/                     # the tic-tac-toe database
//	rabuild -game krk -board 8 -out dbs/            # the KRK chess endgame
//	rabuild -stones 9 -memlimit 4194304 -out dbs/   # out-of-core: 4 MiB resident cap
//
// -memlimit selects the out-of-core engine: each rung is solved with
// resident per-position state capped at the given byte budget, cold
// blocks spilled (zdb-compressed, checksummed) to -spilldir, which
// defaults to <out>/spill. The database written is bit-identical to the
// in-core engines'. A killed build resumes from the last spill-store
// checkpoint when rerun with the same flags.
//
// For awari, all rungs 0..stones are built in order (each rung needs the
// smaller ones) and each is saved as awari-<n>.radb. The chosen engine is
// used for every rung; with -engine distributed the tool also prints the
// virtual-time report of the top rung.
//
// With -compress, databases are written in the block-compressed v2
// format (see internal/zdb): same .radb extension, smaller files, still
// random-access. -block sets the block length in entries (0 = default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"retrograde/internal/awari"
	"retrograde/internal/chess"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/kalah"
	"retrograde/internal/ladder"
	"retrograde/internal/nim"
	_ "retrograde/internal/oocore" // registers the out-of-core engine with ra
	"retrograde/internal/ra"
	"retrograde/internal/remote"
	"retrograde/internal/stats"
	"retrograde/internal/ttt"
	"retrograde/internal/zdb"
)

// Compression settings shared by every save path, set once from flags.
var (
	compressOut bool
	blockLen    int
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rabuild: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	gameName := flag.String("game", "awari", "game to solve: awari, kalah, nim, ttt, krk")
	stones := flag.Int("stones", 8, "awari: build databases for 0..stones stones")
	loopRule := flag.String("loop", "own-side", "awari loop rule: own-side, even-split, zero")
	grandSlam := flag.String("grandslam", "allowed", "awari grand-slam rule: allowed, forfeit")
	refine := flag.Bool("refine", false, "awari: refine cyclic values to a best-move fixpoint")
	heaps := flag.Int("heaps", 3, "nim: number of heaps")
	maxHeap := flag.Int("max", 7, "nim: heap capacity")
	board := flag.Int("board", 8, "krk: board size (4..8)")
	engineName := flag.String("engine", "concurrent", "engine: sequential, concurrent, distributed, tcp, outofcore")
	procs := flag.Int("procs", 8, "workers (concurrent) or simulated nodes (distributed)")
	combineSize := flag.Int("combine", 100, "distributed: updates per combined message (1 = off)")
	memLimit := flag.Uint64("memlimit", 0, "resident state cap in bytes; >0 selects the out-of-core engine")
	spillDir := flag.String("spilldir", "", "out-of-core spill directory (default <out>/spill)")
	syncSpill := flag.Bool("syncspill", false, "out-of-core: disable write-behind spilling and frontier prefetch (synchronous A/B control; bit-identical output)")
	out := flag.String("out", ".", "output directory for .radb files")
	single := flag.String("single", "", "awari: additionally write all rungs into one .rafy family file")
	compress := flag.Bool("compress", false, "write block-compressed v2 .radb files")
	block := flag.Int("block", 0, "v2 block length in entries (0 = default)")
	flag.Parse()
	compressOut, blockLen = *compress, *block

	if *memLimit > 0 && *engineName == "concurrent" {
		*engineName = "outofcore" // -memlimit alone selects the capped engine
	}
	var engine ra.Engine
	switch *engineName {
	case "sequential":
		engine = ra.Sequential{}
	case "concurrent":
		engine = ra.Concurrent{Workers: *procs}
	case "distributed":
		engine = ra.Distributed{Workers: *procs, Combine: *combineSize}
	case "tcp":
		engine = remote.Engine{Workers: *procs, Batch: *combineSize}
	case "outofcore":
		if *memLimit == 0 {
			return fmt.Errorf("engine outofcore needs -memlimit > 0")
		}
		dir := *spillDir
		if dir == "" {
			dir = filepath.Join(*out, "spill")
		}
		engine = outOfCore{memLimit: *memLimit, dir: dir, sync: *syncSpill}
	default:
		return fmt.Errorf("unknown engine %q", *engineName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	switch *gameName {
	case "awari":
		return buildAwari(*stones, *loopRule, *grandSlam, *refine, engine, *out, *single)
	case "nim":
		g, err := nim.New(*heaps, *maxHeap)
		if err != nil {
			return err
		}
		return buildOne(g, engine, *out)
	case "ttt":
		return buildOne(ttt.New(), engine, *out)
	case "kalah":
		return buildKalah(*stones, engine, *out)
	case "krk":
		g, err := chess.New(*board)
		if err != nil {
			return err
		}
		return buildOne(g, engine, *out)
	}
	return fmt.Errorf("unknown game %q", *gameName)
}

// outOfCore adapts the capped engine to ladder use: rungs differ in size,
// so each game spills into its own subdirectory (keyed by game name) and
// an interrupted build resumes whichever rung it died in.
type outOfCore struct {
	memLimit uint64
	dir      string
	sync     bool // spill synchronously: no write-behind, no prefetch
}

func (e outOfCore) Name() string { return fmt.Sprintf("out-of-core(cap=%d)", e.memLimit) }

func (e outOfCore) Solve(g game.Game) (*ra.Result, error) {
	inner, err := ra.NewEngine(ra.Config{
		Engine:    ra.OutOfCore,
		MemLimit:  e.memLimit,
		SpillDir:  filepath.Join(e.dir, g.Name()),
		SpillSync: e.sync,
	})
	if err != nil {
		return nil, err
	}
	return inner.Solve(g)
}

func buildAwari(stones int, loopName, slamName string, refine bool, engine ra.Engine, out, single string) error {
	var loop awari.LoopRule
	switch loopName {
	case "own-side":
		loop = awari.LoopOwnSide
	case "even-split":
		loop = awari.LoopEvenSplit
	case "zero":
		loop = awari.LoopZero
	default:
		return fmt.Errorf("unknown loop rule %q", loopName)
	}
	rules := awari.Standard
	switch slamName {
	case "allowed":
	case "forfeit":
		rules.GrandSlam = awari.GrandSlamForfeit
	default:
		return fmt.Errorf("unknown grand-slam rule %q", slamName)
	}
	cfg := ladder.Config{Rules: rules, Loop: loop, Refine: refine}
	start := time.Now()
	l, err := ladder.Build(cfg, stones, engine, func(n int, r *ra.Result) {
		slice := awari.MustSlice(rules, loop, n, func(int, uint64) game.Value { return 0 })
		path := filepath.Join(out, fmt.Sprintf("awari-%d.radb", n))
		if err := save(slice, r, path); err != nil {
			fmt.Fprintf(os.Stderr, "rabuild: saving rung %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("awari-%-2d  %12s positions  %3d waves  %12s loopy  -> %s\n",
			n, stats.Count(uint64(len(r.Values))), r.Waves, stats.Count(r.LoopPositions), path)
		if r.Sim != nil {
			fmt.Printf("          virtual time %v, %s wire messages, combining factor %.1f\n",
				r.Sim.Duration, stats.Count(r.Sim.DataMessages), r.Sim.Combining.Factor())
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("built %d databases in %v (wall) with %s\n", l.MaxStones()+1, time.Since(start).Round(time.Millisecond), engine.Name())
	if single != "" {
		bits := 1
		for 1<<bits <= stones {
			bits++
		}
		fam, err := db.PackFamily("awari", awari.Pits, stones, bits, func(total int) []game.Value {
			return l.Result(total).Values
		})
		if err != nil {
			return err
		}
		if err := fam.Save(single); err != nil {
			return err
		}
		fmt.Printf("family file: %s (%s for all %d rungs)\n", single, stats.Bytes(fam.Bytes()), stones+1)
	}
	return nil
}

func buildKalah(stones int, engine ra.Engine, out string) error {
	start := time.Now()
	l, err := kalah.BuildLadder(stones, engine, func(n int, r *ra.Result) {
		path := filepath.Join(out, fmt.Sprintf("kalah-%d.radb", n))
		t, err := db.Pack(fmt.Sprintf("kalah-%d", n), valueBitsFor(n), r.Values)
		if err == nil {
			err = saveTable(t, path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rabuild: saving kalah rung %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("kalah-%-2d  %12s positions  %3d waves  -> %s\n",
			n, stats.Count(uint64(len(r.Values))), r.Waves, path)
	})
	if err != nil {
		return err
	}
	fmt.Printf("built %d kalah databases in %v (wall) with %s\n", l.MaxStones()+1, time.Since(start).Round(time.Millisecond), engine.Name())
	return nil
}

func valueBitsFor(stones int) int {
	bits := 1
	for 1<<bits <= stones {
		bits++
	}
	return bits
}

func buildOne(g game.Game, engine ra.Engine, out string) error {
	start := time.Now()
	r, err := engine.Solve(g)
	if err != nil {
		return err
	}
	path := filepath.Join(out, g.Name()+".radb")
	if err := save(g, r, path); err != nil {
		return err
	}
	fmt.Printf("%s  %s positions  %d waves  -> %s (%v wall)\n",
		g.Name(), stats.Count(uint64(len(r.Values))), r.Waves, path, time.Since(start).Round(time.Millisecond))
	if r.Sim != nil {
		fmt.Printf("  virtual time %v, %s wire messages, combining factor %.1f\n",
			r.Sim.Duration, stats.Count(r.Sim.DataMessages), r.Sim.Combining.Factor())
	}
	return nil
}

func save(g game.Game, r *ra.Result, path string) error {
	t, err := db.Pack(g.Name(), g.ValueBits(), r.Values)
	if err != nil {
		return err
	}
	return saveTable(t, path)
}

// saveTable writes the table as plain v1, or as block-compressed v2
// when -compress is set.
func saveTable(t *db.Table, path string) error {
	if !compressOut {
		return t.Save(path)
	}
	z, err := zdb.Compress(t, blockLen)
	if err != nil {
		return err
	}
	if err := z.Save(path); err != nil {
		return err
	}
	fmt.Printf("          compressed %s -> %s (%.2fx)\n",
		stats.Bytes(z.RawBytes()), stats.Bytes(z.Bytes()), z.Ratio())
	return nil
}
