// Command rabroker fronts a fleet of raserve backends with one address:
// a sharded, replicated serving tier. It speaks the same binary batch
// protocol and HTTP surface as raserve, so raquery, raload and search
// probers point at it unchanged.
//
// Usage:
//
//	rabroker -backends host1:7101,host2:7101,host3:7101 -listen :7100
//
// Rungs are placed on backends by consistent hashing (so a fleet can
// grow without reshuffling every rung), except the hot bottom of the
// ladder — rungs 0..-replicate — which every backend serves and the
// broker round-robins. Each backend is health-checked continuously
// (binary ping + HTTP /healthz); queries route around dead backends
// with bounded failover, so killing one node degrades throughput, not
// correctness, provided the surviving owners hold the rungs (the
// simplest deployment: every backend serves the full database
// directory, and the broker's placement is a load-spreading policy
// rather than a storage constraint).
//
// Inspect a running broker:
//
//	curl localhost:7100/backends   # health + placement
//	curl localhost:7100/metrics    # front counters + per-backend clients
//	curl localhost:7100/stats      # human-readable tables
//
// SIGINT/SIGTERM drains in-flight batches before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"retrograde/internal/broker"
	"retrograde/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rabroker: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	backends := flag.String("backends", "", "comma-separated raserve addresses (required)")
	listen := flag.String("listen", "127.0.0.1:7100", "address to listen on")
	replicate := flag.Int("replicate", 6, "serve rungs 0..n from every backend (-1 = shard everything)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default)")
	attempts := flag.Int("attempts", 0, "distinct backends to try per sub-batch before failing (0 = 3)")
	retries := flag.Int("retries", 1, "client retries per backend attempt")
	timeout := flag.Duration("timeout", 10*time.Second, "per-call deadline on backend calls (0 = none)")
	health := flag.Duration("health", 0, "health-check interval per backend (0 = 250ms)")
	failAfter := flag.Int("failafter", 0, "consecutive failed checks that mark a backend down (0 = 2)")
	inflight := flag.Int("inflight", 0, "max concurrently routed batches before shedding (0 = 256)")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-backends is required (comma-separated raserve addresses)")
	}

	br, err := broker.Start(*listen, broker.Config{
		Backends:       addrs,
		ReplicateMax:   *replicate,
		Vnodes:         *vnodes,
		MaxAttempts:    *attempts,
		Client:         server.ClientConfig{Retries: *retries, Timeout: *timeout},
		HealthInterval: *health,
		FailAfter:      *failAfter,
		MaxInflight:    *inflight,
	})
	if err != nil {
		return err
	}

	fmt.Printf("rabroker: fronting %d backends\n", len(addrs))
	for _, a := range addrs {
		fmt.Printf("  %s\n", a)
	}
	if *replicate >= 0 {
		fmt.Printf("rungs 0..%d replicated on every backend; higher rungs consistent-hashed\n", *replicate)
	} else {
		fmt.Println("replication off: every rung consistent-hashed to one owner")
	}
	fmt.Printf("listening on %s (binary protocol + HTTP)\n", br.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("rabroker: draining...")
	return br.Close()
}
