package main

// The unit-checker half of the driver: `go vet -vettool=ravet` invokes
// the tool once per package with a JSON config file describing the unit —
// source files, the import map, and export-data files for dependencies.
// This mirrors the x/tools unitchecker protocol using only the standard
// library: dependencies are imported from the compiler's export data
// rather than re-type-checked from source.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"retrograde/internal/analysis"
)

// unitConfig is the subset of the go vet config file ravet needs.
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ravet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file regardless of outcome.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
			return 1
		}
	}
	// A VetxOnly unit is a dependency the go command wants facts for, not
	// a package named on the vet command line; ravet keeps no facts, so
	// there is nothing to do.
	if cfg.VetxOnly {
		return 0
	}
	// Generated p.test mains and external _test packages contain no
	// production code at all. The in-package test variant "p [p.test]"
	// does — when a package has tests, the go command analyzes only that
	// augmented unit (the plain one is VetxOnly) — so it is analyzed in
	// full and findings inside _test.go files are dropped afterwards:
	// tests legitimately use deadline-free pipes, naked goroutines and
	// map-order loops.
	if strings.HasSuffix(cfg.ID, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := analysis.TypeCheckFiles(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ravet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	res, err := analysis.Run([]*analysis.Package{pkg}, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
		return 1
	}
	bad := 0
	for _, f := range res.Findings {
		if f.Suppressed || strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		bad++
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	for _, f := range res.DirectiveErrors {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		bad++
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if bad > 0 {
		return 2 // the go command's "diagnostics reported" exit status
	}
	return 0
}
