// Command ravet runs the project's static-analysis suite: six analyzers
// enforcing the wire, kernel and concurrency invariants the distributed
// solver depends on (see internal/analysis).
//
// Standalone:
//
//	go run ./cmd/ravet ./...         # analyze packages, exit 1 on findings
//	go run ./cmd/ravet -v ./...      # also list suppressed findings
//
// As a vet tool (unit-checker protocol):
//
//	go build -o bin/ravet ./cmd/ravet
//	go vet -vettool=bin/ravet ./...
//
// Findings are suppressed only by an inline directive on (or directly
// above) the offending line:
//
//	//ravet:ignore <analyzer> <reason>
//
// The summary line counts suppressions per analyzer; a directive naming
// an unknown analyzer, or carrying no reason, fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"retrograde/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Unit-checker protocol entry points, used by `go vet -vettool`.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("ravet version %s\n", analysis.Version)
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		}
	}

	fs := flag.NewFlagSet("ravet", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "also list suppressed findings with their reasons")
	version := fs.Bool("version", false, "print the suite version and analyzer list")
	dir := fs.String("C", ".", "change to this directory before loading packages")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *version {
		fmt.Printf("%s (%d analyzers)\n", analysis.Version, len(suite))
		for _, a := range suite {
			fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
		return 2
	}
	res, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ravet: %v\n", err)
		return 2
	}

	bad := 0
	for _, f := range res.Findings {
		if f.Suppressed {
			if *verbose {
				fmt.Printf("%s: [%s] suppressed (%s): %s\n", f.Pos, f.Analyzer, f.Reason, f.Message)
			}
			continue
		}
		bad++
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	for _, f := range res.DirectiveErrors {
		bad++
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}

	sup := res.SuppressedCount()
	total := 0
	var parts []string
	names := make([]string, 0, len(sup))
	for n := range sup {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		total += sup[n]
		parts = append(parts, fmt.Sprintf("%s %d", n, sup[n]))
	}
	supStr := "0 suppressed"
	if total > 0 {
		supStr = fmt.Sprintf("%d suppressed (%s)", total, strings.Join(parts, ", "))
	}
	fmt.Printf("ravet %s: %d analyzers over %d packages: %d findings, %s\n",
		analysis.Version, len(suite), res.Packages, bad, supStr)
	if bad > 0 {
		return 1
	}
	return 0
}
