// Package retrograde is a library for building game endgame databases by
// parallel retrograde analysis, reproducing Bal & Allis, "Parallel
// Retrograde Analysis on a Distributed System" (SC95).
//
// # What it does
//
// Retrograde analysis enumerates every position of a game slice and
// computes optimal values backwards from terminal positions via un-moves.
// This package provides:
//
//   - the awari rules engine and database ladder of the paper, plus
//     Kalah, Nim, tic-tac-toe and the KRK/KQK chess endgames as further
//     games and validation oracles;
//   - interchangeable engines that compute bit-identical databases:
//     Sequential (the paper's uniprocessor baseline), Concurrent (real
//     goroutines with batched channel sends), Distributed (the paper's
//     message-combining algorithm on a simulated 64-node Ethernet
//     cluster, measured in deterministic virtual time), AsyncDistributed
//     (barrier-free, Safra termination detection), TCP (real sockets)
//     and Resumable (checkpoint/restart);
//   - bit-packed, checksummed database files;
//   - the experiment harness that regenerates the paper's evaluation
//     (see cmd/rabench and EXPERIMENTS.md).
//
// # Quickstart
//
//	cfg := retrograde.LadderConfig{Rules: retrograde.StandardRules, Loop: retrograde.LoopOwnSide}
//	l, err := retrograde.BuildLadder(cfg, 8, retrograde.Concurrent{}, nil)
//	if err != nil { ... }
//	board := retrograde.Board{0, 0, 0, 0, 2, 1, 1, 0, 0, 0, 0, 3}
//	pit, value, ok := l.BestMove(board)
//
// # Architecture
//
// internal/game defines the Game interface retrograde analysis consumes;
// internal/awari, internal/nim, internal/ttt implement it. internal/ra
// holds the engines around one shared worker state machine. The
// distributed engine runs on internal/cluster (simulated nodes with
// 1995-calibrated per-message costs) over internal/network (a shared-bus
// Ethernet model) under internal/sim (a deterministic discrete-event
// kernel), with internal/combine providing message combining. See
// DESIGN.md for the full inventory.
package retrograde

import (
	"retrograde/internal/awari"
	"retrograde/internal/broker"
	"retrograde/internal/chess"
	"retrograde/internal/db"
	"retrograde/internal/game"
	"retrograde/internal/kalah"
	"retrograde/internal/ladder"
	"retrograde/internal/ra"
	"retrograde/internal/remote"
	"retrograde/internal/search"
	"retrograde/internal/server"
)

// Core value and game types.
type (
	// Value is a game-specific encoded position value.
	Value = game.Value
	// Game is the position-space abstraction the engines analyse.
	Game = game.Game
	// Move is one legal move of the player to move.
	Move = game.Move
)

// NoValue marks "no value known".
const NoValue = game.NoValue

// Awari types.
type (
	// Board is an awari position from the mover's perspective.
	Board = awari.Board
	// Rules selects the awari rule variant.
	Rules = awari.Rules
	// LoopRule selects how eternal (cyclic) play is scored.
	LoopRule = awari.LoopRule
	// Slice is the n-stone awari database slice as a Game.
	Slice = awari.Slice
)

// StandardRules is awari as solved: grand slams capture, feeding is
// obligatory.
var StandardRules = awari.Standard

// Loop-scoring conventions (see DESIGN.md).
const (
	LoopOwnSide   = awari.LoopOwnSide
	LoopEvenSplit = awari.LoopEvenSplit
	LoopZero      = awari.LoopZero
)

// AwariSize returns the exact number of n-stone awari positions,
// C(n+11, 11).
func AwariSize(stones int) uint64 { return awari.Size(stones) }

// Engines.
type (
	// Engine solves a Game by retrograde analysis.
	Engine = ra.Engine
	// Result is a finished analysis: values plus work statistics.
	Result = ra.Result
	// Sequential is the uniprocessor baseline engine.
	Sequential = ra.Sequential
	// Concurrent is the shared-memory goroutine engine.
	Concurrent = ra.Concurrent
	// Distributed is the simulated-cluster engine of the paper.
	Distributed = ra.Distributed
	// AsyncDistributed is the barrier-free variant: continuous expansion
	// with Safra token-ring termination detection.
	AsyncDistributed = ra.AsyncDistributed
	// SimReport describes a Distributed run: virtual time and traffic.
	SimReport = ra.SimReport
	// Resumable is the sequential engine with periodic checkpoints and
	// resume-from-file, for long builds.
	Resumable = ra.Resumable
	// TCP is the engine over real sockets: the deployable counterpart to
	// the simulated Distributed engine.
	TCP = remote.Engine
	// RefineStats describes an iterative cycle-value refinement.
	RefineStats = ra.RefineStats
)

// Termination protocols of the Distributed engine.
const (
	CentralProtocol = ra.CentralProtocol
	TreeProtocol    = ra.TreeProtocol
)

// ErrPaused is returned by Resumable.Solve when it stops at a checkpoint.
var ErrPaused = ra.ErrPaused

// Refine improves a finished database's cyclic positions to a fixpoint
// where no player forgoes a strictly better move (see DESIGN.md); ladders
// apply it automatically when LadderConfig.Refine is set.
func Refine(g Game, r *Result, maxSweeps int) RefineStats { return ra.Refine(g, r, maxSweeps) }

// AuditRefined verifies a refined database.
func AuditRefined(g Game, r *Result) error { return ra.AuditRefined(g, r) }

// NewKRK returns the king-and-rook-versus-king chess endgame on an m x m
// board (m = 4..8) — the classic retrograde-analysis validation target.
func NewKRK(m int) (Game, error) { return chess.New(m) }

// NewKRKReduced returns KRK under 8-fold symmetry reduction: the same
// values in roughly an eighth of the positions.
func NewKRKReduced(m int) (Game, error) { return chess.NewReduced(m) }

// NewKQK returns the king-and-queen-versus-king endgame (longest mate:
// 10 moves on the 8x8 board).
func NewKQK(m int) (Game, error) { return chess.NewWithPiece(m, chess.Queen) }

// Search types: a forward solver probing the endgame databases (the use
// the paper motivates).
type (
	// Searcher solves awari positions by depth-limited negamax with
	// database probes.
	Searcher = search.Searcher
	// SearchResult is the outcome of one search.
	SearchResult = search.Result
)

// NewSearcher returns a Searcher over the ladder's databases.
func NewSearcher(l *Ladder) *Searcher { return search.New(l) }

// Solve runs retrograde analysis over a full game with the given engine.
func Solve(g Game, e Engine) (*Result, error) { return e.Solve(g) }

// Audit independently re-derives every value of a finished database and
// returns the first inconsistency found, or nil.
func Audit(g Game, r *Result) error { return ra.Audit(g, r) }

// Ladder types: families of awari databases built bottom-up.
type (
	// Ladder holds awari databases for stone totals 0..MaxStones().
	Ladder = ladder.Ladder
	// LadderConfig selects the rules and loop scoring of a ladder.
	LadderConfig = ladder.Config
)

// BuildLadder constructs awari databases for totals 0..maxStones, solving
// each rung with the engine. onRung, if non-nil, observes progress.
func BuildLadder(cfg LadderConfig, maxStones int, e Engine, onRung func(stones int, r *Result)) (*Ladder, error) {
	return ladder.Build(cfg, maxStones, e, onRung)
}

// KalahLadder holds Kalah endgame databases, the second mancala game of
// the library (stores, extra turns, captures-to-store).
type KalahLadder = kalah.Ladder

// BuildKalahLadder constructs Kalah databases for totals 0..maxStones.
func BuildKalahLadder(maxStones int, e Engine, onRung func(stones int, r *Result)) (*KalahLadder, error) {
	return kalah.BuildLadder(maxStones, e, onRung)
}

// Storage.
type (
	// Table is a bit-packed, checksummed database table.
	Table = db.Table
)

// Database server: finished databases served over the network, with an
// LRU shard cache, request batching, and HTTP endpoints alongside the
// binary protocol (see cmd/raserve and internal/server).
type (
	// DBServer answers database queries over TCP and HTTP.
	DBServer = server.Server
	// DBServerConfig selects the database directory, rules, memory
	// budget and concurrency of a DBServer.
	DBServerConfig = server.Config
	// DBClient speaks the binary batch protocol to a DBServer.
	DBClient = server.Client
	// DBQuery is one query of a batch.
	DBQuery = server.Query
	// DBAnswer is the reply to one DBQuery.
	DBAnswer = server.Answer
)

// ErrDBOverloaded is returned when the server sheds a batch under load.
var ErrDBOverloaded = server.ErrOverloaded

// StartDBServer serves the databases found in cfg.Dir on addr.
func StartDBServer(addr string, cfg DBServerConfig) (*DBServer, error) {
	return server.Start(addr, cfg)
}

// DialDBServer connects a client to a running DBServer.
func DialDBServer(addr string) (*DBClient, error) { return server.Dial(addr) }

// Serving tier: a fleet of DBServers behind one address (see
// cmd/rabroker and internal/broker).
type (
	// DBBroker fronts DBServer backends on one listener, speaking the
	// same binary protocol and HTTP surface: rungs are consistent-hashed
	// across the fleet, hot rungs replicated everywhere, and dead
	// backends health-checked and routed around.
	DBBroker = broker.Broker
	// DBBrokerConfig lists the backends and sets replication, failover
	// and health-check policy.
	DBBrokerConfig = broker.Config
)

// StartDBBroker fronts the configured backends on addr. Clients dial it
// exactly as they would a DBServer.
func StartDBBroker(addr string, cfg DBBrokerConfig) (*DBBroker, error) {
	return broker.Start(addr, cfg)
}

// NewRemoteSearcher returns a Searcher whose probes go to a database
// server instead of a local ladder; probeLimit is the largest stone
// count the server's databases cover (DBServer's /shards or the
// client's errors reveal it).
func NewRemoteSearcher(c *DBClient, rules Rules, loop LoopRule, probeLimit int) *Searcher {
	return search.NewProber(server.NewProber(c), rules, loop, probeLimit)
}

// PackResult packs a finished analysis of g into a Table using the game's
// declared value width.
func PackResult(g Game, r *Result) (*Table, error) {
	return db.Pack(g.Name(), g.ValueBits(), r.Values)
}

// LoadTable reads a Table from a file written by Table.Save.
func LoadTable(path string) (*Table, error) { return db.Load(path) }
