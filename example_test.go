package retrograde_test

import (
	"fmt"

	"retrograde"
)

// ExampleBuildLadder builds awari endgame databases and queries one.
func ExampleBuildLadder() {
	cfg := retrograde.LadderConfig{
		Rules: retrograde.StandardRules,
		Loop:  retrograde.LoopOwnSide,
	}
	l, err := retrograde.BuildLadder(cfg, 6, retrograde.Sequential{}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	board := retrograde.Board{0, 0, 0, 0, 2, 1, 1, 0, 0, 0, 0, 2}
	fmt.Printf("mover captures %d of %d stones\n", l.Value(board), board.Stones())
	// Output:
	// mover captures 4 of 6 stones
}

// ExampleSolve runs the paper's distributed engine on a game and reads
// the virtual-time report.
func ExampleSolve() {
	g, err := retrograde.NewKRK(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	r, err := retrograde.Solve(g, retrograde.Distributed{Workers: 4, Combine: 32})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("positions: %d\n", len(r.Values))
	fmt.Printf("deterministic virtual run: %v\n", r.Sim.Duration > 0)
	// Output:
	// positions: 8192
	// deterministic virtual run: true
}

// ExampleAudit verifies a finished database independently.
func ExampleAudit() {
	g, _ := retrograde.NewKQK(4)
	r, err := retrograde.Solve(g, retrograde.Concurrent{Workers: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("audit:", retrograde.Audit(g, r))
	// Output:
	// audit: <nil>
}

// ExampleNewSearcher resolves a position above the databases by forward
// search with probes.
func ExampleNewSearcher() {
	cfg := retrograde.LadderConfig{
		Rules: retrograde.StandardRules,
		Loop:  retrograde.LoopOwnSide,
	}
	l, err := retrograde.BuildLadder(cfg, 6, retrograde.Concurrent{}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := retrograde.NewSearcher(l)
	// A 7-stone position, one stone above the databases.
	board := retrograde.Board{0, 0, 1, 0, 2, 1, 1, 0, 0, 0, 0, 2}
	res, err := s.Solve(board, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("probed the databases: %v\n", res.Probes > 0)
	// Output:
	// probed the databases: true
}
